package des

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v, want 30ms", end)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order = %v", got)
	}
}

func TestSameTimeEventsRunInInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(0, func() {})
	})
	s.Run()
}

func TestAfterNegativePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestProcSleepAdvancesClock(t *testing.T) {
	s := New()
	var at []Time
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(5 * time.Millisecond)
			at = append(at, p.Now())
		}
	})
	s.Run()
	want := []Time{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("wakeups = %v, want %v", at, want)
		}
	}
}

func TestProcZeroSleepYields(t *testing.T) {
	s := New()
	var got []string
	s.Spawn("a", func(p *Proc) {
		got = append(got, "a1")
		p.Sleep(0)
		got = append(got, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		got = append(got, "b1")
		p.Sleep(0)
		got = append(got, "b2")
	})
	s.Run()
	if fmt.Sprint(got) != "[a1 b1 a2 b2]" {
		t.Fatalf("interleaving = %v", got)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New()
	s.Spawn("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate out of Run")
		}
	}()
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(time.Second, func() { fired++ })
	s.Schedule(3*time.Second, func() { fired++ })
	if drained := s.RunUntil(2 * time.Second); drained {
		t.Fatal("RunUntil claimed drained with a future event pending")
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !s.RunUntil(5 * time.Second) {
		t.Fatal("RunUntil did not drain")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestChanSendRecv(t *testing.T) {
	s := New()
	c := NewChan(s)
	var got []any
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := c.Recv(p)
			if !ok {
				t.Error("unexpected close")
			}
			got = append(got, v)
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			c.Send(i)
		}
	})
	s.Run()
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestChanBufferedBeforeRecv(t *testing.T) {
	s := New()
	c := NewChan(s)
	c.Send("x")
	c.Send("y")
	var got []any
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := c.Recv(p)
			got = append(got, v)
		}
	})
	s.Run()
	if fmt.Sprint(got) != "[x y]" {
		t.Fatalf("got %v", got)
	}
}

func TestChanMultipleWaitersFIFO(t *testing.T) {
	s := New()
	c := NewChan(s)
	var got []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			v, _ := c.Recv(p)
			got = append(got, fmt.Sprintf("%s=%v", name, v))
		})
	}
	s.Spawn("send", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Send(1)
		c.Send(2)
		c.Send(3)
	})
	s.Run()
	if fmt.Sprint(got) != "[w1=1 w2=2 w3=3]" {
		t.Fatalf("got %v", got)
	}
}

func TestChanClose(t *testing.T) {
	s := New()
	c := NewChan(s)
	okSeen := true
	s.Spawn("recv", func(p *Proc) {
		_, okSeen = c.Recv(p)
	})
	s.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Close()
		c.Close() // idempotent
	})
	s.Run()
	if okSeen {
		t.Fatal("Recv on closed channel returned ok=true")
	}
}

func TestChanCloseDrainsBufferFirst(t *testing.T) {
	s := New()
	c := NewChan(s)
	c.Send(42)
	c.Close()
	s.Spawn("recv", func(p *Proc) {
		v, ok := c.Recv(p)
		if !ok || v.(int) != 42 {
			t.Errorf("got (%v,%v), want (42,true)", v, ok)
		}
		if _, ok := c.Recv(p); ok {
			t.Error("second recv should report closed")
		}
	})
	s.Run()
}

func TestChanSendOnClosedPanics(t *testing.T) {
	s := New()
	c := NewChan(s)
	c.Close()
	defer func() {
		if recover() == nil {
			t.Error("send on closed channel did not panic")
		}
	}()
	c.Send(1)
}

func TestChanRecvTimeout(t *testing.T) {
	s := New()
	c := NewChan(s)
	var timedOut, gotValue bool
	s.Spawn("recv", func(p *Proc) {
		if _, ok := c.RecvTimeout(p, 10*time.Millisecond); !ok {
			timedOut = true
		}
		if p.Now() != 10*time.Millisecond {
			t.Errorf("timeout at %v, want 10ms", p.Now())
		}
		v, ok := c.RecvTimeout(p, 100*time.Millisecond)
		gotValue = ok && v.(string) == "late"
	})
	s.Schedule(30*time.Millisecond, func() { c.Send("late") })
	s.Run()
	if !timedOut {
		t.Error("first recv should have timed out")
	}
	if !gotValue {
		t.Error("second recv should have received the value")
	}
}

func TestChanStaleTimerDoesNotCorruptLaterWait(t *testing.T) {
	s := New()
	c := NewChan(s)
	var second any
	s.Spawn("recv", func(p *Proc) {
		// Value arrives before the timeout; the pending timer must not
		// disturb the plain Recv that follows.
		if v, ok := c.RecvTimeout(p, 50*time.Millisecond); !ok || v.(int) != 1 {
			t.Errorf("first recv got (%v,%v)", v, ok)
		}
		second, _ = c.Recv(p)
	})
	s.Schedule(time.Millisecond, func() { c.Send(1) })
	s.Schedule(200*time.Millisecond, func() { c.Send(2) })
	s.Run()
	if second != 2 {
		t.Fatalf("second recv got %v, want 2", second)
	}
}

func TestGate(t *testing.T) {
	s := New()
	g := NewGate(s)
	released := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			g.Wait(p)
			released++
			if p.Now() != time.Second {
				t.Errorf("released at %v, want 1s", p.Now())
			}
		})
	}
	s.Schedule(time.Second, func() { g.Open(); g.Open() })
	s.Run()
	if released != 3 {
		t.Fatalf("released = %d, want 3", released)
	}
	if !g.IsOpen() {
		t.Fatal("gate should be open")
	}
	// Late waiter passes straight through.
	s.Spawn("late", func(p *Proc) {
		g.Wait(p)
		released++
	})
	s.Run()
	if released != 4 {
		t.Fatalf("late waiter not released, released = %d", released)
	}
}

func TestBarrierRounds(t *testing.T) {
	s := New()
	const n = 4
	b := NewBarrier(s, n)
	var log []string
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(Time(i+1) * time.Millisecond) // staggered arrivals
				b.Wait(p)
				log = append(log, fmt.Sprintf("r%d", round))
			}
		})
	}
	s.Run()
	if len(log) != 3*n {
		t.Fatalf("len(log) = %d", len(log))
	}
	// All n completions of round k must precede any completion of round k+1.
	for i, entry := range log {
		if want := fmt.Sprintf("r%d", i/n); entry != want {
			t.Fatalf("log[%d] = %s, want %s (full: %v)", i, entry, want, log)
		}
	}
	if b.Round() != 3 {
		t.Fatalf("rounds = %d, want 3", b.Round())
	}
}

func TestBarrierSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size barrier did not panic")
		}
	}()
	NewBarrier(New(), 0)
}

// runRandomWorkload executes a randomized producer/consumer workload and
// returns a trace of (time, value) pairs.
func runRandomWorkload(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	s := New()
	c := NewChan(s)
	var trace []string
	nprod, ncons, nmsg := 2+rng.Intn(3), 1+rng.Intn(3), 5+rng.Intn(20)
	total := nprod * nmsg
	for i := 0; i < nprod; i++ {
		i := i
		delay := Time(rng.Intn(1000)) * time.Microsecond
		s.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
			for m := 0; m < nmsg; m++ {
				p.Sleep(delay)
				c.Send(i*1000 + m)
			}
		})
	}
	got := 0
	for i := 0; i < ncons; i++ {
		s.Spawn(fmt.Sprintf("cons%d", i), func(p *Proc) {
			for got < total {
				v, ok := c.Recv(p)
				if !ok {
					return
				}
				got++
				trace = append(trace, fmt.Sprintf("%v:%v", p.Now(), v))
				if got == total {
					c.Close()
				}
			}
		})
	}
	s.Run()
	return fmt.Sprint(trace)
}

// TestDeterminism is the load-bearing property of the kernel: identical
// seeds must give identical event traces.
func TestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		return runRandomWorkload(seed) == runRandomWorkload(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Events() != 5 {
		t.Fatalf("events = %d, want 5", s.Events())
	}
}

func TestLiveProcs(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) { p.Sleep(time.Second) })
	if s.LiveProcs() != 1 {
		t.Fatalf("live = %d, want 1", s.LiveProcs())
	}
	s.Run()
	if s.LiveProcs() != 0 {
		t.Fatalf("live = %d after run, want 0", s.LiveProcs())
	}
}

func TestSpawnManyProcsStress(t *testing.T) {
	// A few thousand processes exchanging through one channel: exercises
	// the scheduler's handoff machinery at scale.
	s := New()
	c := NewChan(s)
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Time(i) * time.Microsecond)
			c.Send(i)
		})
	}
	s.Spawn("drain", func(p *Proc) {
		for j := 0; j < n; j++ {
			if _, ok := c.Recv(p); ok {
				done++
			}
		}
	})
	s.Run()
	if done != n {
		t.Fatalf("drained %d of %d", done, n)
	}
	if s.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked", s.LiveProcs())
	}
}

func TestGateWaitAfterOpenCostsNothing(t *testing.T) {
	s := New()
	g := NewGate(s)
	g.Open()
	s.Spawn("w", func(p *Proc) {
		before := p.Now()
		g.Wait(p)
		if p.Now() != before {
			t.Error("waiting on an open gate advanced time")
		}
	})
	s.Run()
}

func TestShutdownReapsParkedProcs(t *testing.T) {
	sim := New()
	cleanedUp := 0
	for i := 0; i < 3; i++ {
		sim.Spawn("parked", func(p *Proc) {
			defer func() { cleanedUp++ }()
			p.Park() // nothing ever unparks it
		})
	}
	finished := false
	sim.Spawn("finisher", func(p *Proc) { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("finisher did not run")
	}
	if sim.LiveProcs() != 3 {
		t.Fatalf("LiveProcs = %d before shutdown, want 3", sim.LiveProcs())
	}
	if n := sim.Shutdown(); n != 3 {
		t.Fatalf("Shutdown reaped %d procs, want 3", n)
	}
	if sim.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after shutdown", sim.LiveProcs())
	}
	if cleanedUp != 3 {
		t.Fatalf("deferred cleanup ran %d times, want 3", cleanedUp)
	}
	if sim.Shutdown() != 0 {
		t.Fatal("second Shutdown found processes")
	}
}
