package des

import "fmt"

// Continuation-backed processes ("tasks"): the goroutine-free execution
// mode of the simulator, used by the sim-fast engine (internal/simfast).
//
// A task is an ordinary *Proc whose suspension points are explicit
// continuations instead of a parked goroutine: where a goroutine process
// blocks in Sleep/Park/Chan.Recv and is resumed through a channel
// rendezvous (two channel operations and two context switches per
// activation), a task stores a `func()` and the scheduler simply calls it.
// Everything else — the event queue, the (timestamp, insertion-seq)
// ordering, process ids, the waiter lists of Chan/Gate/Barrier — is shared
// with goroutine processes, and every continuation primitive below performs
// *exactly* the same Schedule calls in the same order as its blocking
// counterpart. A program that issues the same operations through either
// style therefore allocates identical event sequence numbers and executes
// an identical event order; the differential harness in internal/simfast
// holds the two engines to that contract.
//
// The continuation passed to ParkK/SleepK/RecvK/WaitK must be the last
// action of the current segment (a tail call): code after such a call runs
// before the continuation and must not touch state the continuation
// assumes suspended.

// SpawnTask starts a new continuation-backed process running body. Like
// Spawn, the process begins executing at the current virtual time, after
// any already-queued same-time events; body runs the first segment and
// suspends by installing a continuation (SleepK, ParkK, Chan.RecvK, ...).
// When a segment returns without installing one, the task is finished.
func (s *Simulator) SpawnTask(name string, body func(p *Proc)) *Proc {
	s.nextPID++
	p := &Proc{sim: s, id: s.nextPID, name: name}
	s.procs++
	s.live[p.id] = p
	p.k = func() { body(p) }
	s.Schedule(s.now, func() { s.activate(p) })
	return p
}

// activateTask runs a task's pending continuation in scheduler context.
func (s *Simulator) activateTask(p *Proc) {
	if p.killed {
		// Shutdown reached the task: drop the continuation and finish.
		// Unlike a goroutine unwind there are no deferred functions to
		// run; task bodies perform their bookkeeping at suspension
		// boundaries instead.
		p.k = nil
		s.finishTask(p)
		return
	}
	k := p.k
	p.k = nil
	s.running = p
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.failure = fmt.Sprintf("des: process %q panicked: %v", p.name, r)
			}
		}()
		k()
	}()
	s.running = nil
	if s.failure != nil {
		s.finishTask(p)
		panic(s.failure)
	}
	if p.k == nil {
		// The segment returned without suspending: the task is done.
		s.finishTask(p)
	}
}

func (s *Simulator) finishTask(p *Proc) {
	if p.done {
		return
	}
	p.done = true
	s.procs--
	delete(s.live, p.id)
}

// ParkK suspends the task until Unpark, then runs k — the continuation
// form of Park. Pair every ParkK with exactly one Unpark.
func (p *Proc) ParkK(k func()) {
	p.mustTask("ParkK")
	p.k = k
}

// SleepK suspends the task for d of virtual time, then runs k — the
// continuation form of Sleep. SleepK(0, k) yields to any other same-time
// events before k runs.
func (p *Proc) SleepK(d Time, k func()) {
	if d < 0 {
		panic("des: negative sleep")
	}
	p.mustTask("SleepK")
	s := p.sim
	p.k = k
	s.Schedule(s.now+d, func() { s.activate(p) })
}

// SleepUntilK suspends the task until the absolute virtual time t, then
// runs k — the continuation form of SleepUntil (times at or before now
// yield to same-time events first).
func (p *Proc) SleepUntilK(t Time, k func()) {
	now := p.sim.now
	if t < now {
		t = now
	}
	p.SleepK(t-now, k)
}

// IsTask reports whether the process is continuation-backed.
func (p *Proc) IsTask() bool { return p.resume == nil }

func (p *Proc) mustTask(op string) {
	if !p.IsTask() {
		panic(fmt.Sprintf("des: %s on goroutine-backed process %q (use the blocking form)", op, p.name))
	}
}

// RecvK is the continuation form of Chan.Recv: when a value is buffered
// (or the channel is closed) k runs synchronously, exactly where Recv
// would have returned without yielding; otherwise the task joins the
// waiter queue and k runs when a sender (or Close) hands it a value.
func (c *Chan) RecvK(p *Proc, k func(v any, ok bool)) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		copy(c.buf, c.buf[1:])
		c.buf[len(c.buf)-1] = nil
		c.buf = c.buf[:len(c.buf)-1]
		k(v, true)
		return
	}
	if c.closed {
		k(nil, false)
		return
	}
	c.waiters = append(c.waiters, p)
	p.ParkK(func() {
		v, ok := p.recvSlot, p.hasSlot
		p.recvSlot, p.hasSlot = nil, false
		k(v, ok)
	})
}

// WaitK is the continuation form of Gate.Wait: k runs synchronously when
// the gate is already open, otherwise when it opens.
func (g *Gate) WaitK(p *Proc, k func()) {
	if g.open {
		k()
		return
	}
	g.waiters = append(g.waiters, p)
	p.ParkK(k)
}
