// Package des implements a deterministic discrete-event simulator.
//
// A Simulator advances a virtual clock by executing events in
// (timestamp, insertion-order) order. Simulated activities run as
// goroutine-backed processes (Proc) that block and resume under the
// simulator's control, so at most one process executes at any instant and a
// given program produces the same event order on every run.
//
// The rest of the repository builds on this kernel: the network model
// schedules message deliveries as events, the CPU model charges compute time
// by putting processes to sleep, and the AIAC engine's iteration loops are
// processes.
package des

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is a virtual timestamp, measured as a duration since simulation start.
type Time = time.Duration

// event is a scheduled callback. Events with equal timestamps execute in
// insertion order (seq), which is what makes the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Simulator owns the virtual clock and the event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	nextPID int
	running *Proc
	yielded chan struct{}
	failure any // first panic recovered from a process
	events  uint64
	procs   int           // live (not yet finished) processes
	live    map[int]*Proc // live processes by id (for Shutdown)
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{yielded: make(chan struct{}), live: make(map[int]*Proc)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Events returns the number of events executed so far.
func (s *Simulator) Events() uint64 { return s.events }

// LiveProcs returns the number of spawned processes that have not finished.
func (s *Simulator) LiveProcs() int { return s.procs }

// Schedule runs fn at absolute virtual time at. Scheduling in the past is an
// error and panics: it would silently reorder causality.
func (s *Simulator) Schedule(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d from now. A negative d panics.
func (s *Simulator) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// Spawn starts a new process running body. The process begins executing at
// the current virtual time, after any already-queued same-time events.
func (s *Simulator) Spawn(name string, body func(p *Proc)) *Proc {
	s.nextPID++
	p := &Proc{
		sim:    s,
		id:     s.nextPID,
		name:   name,
		resume: make(chan struct{}),
	}
	s.procs++
	s.live[p.id] = p
	go func() {
		<-p.resume // wait for first activation
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill {
					p.sim.failure = fmt.Sprintf("des: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			p.sim.procs--
			delete(p.sim.live, p.id)
			p.sim.yielded <- struct{}{}
		}()
		if p.killed {
			// Shutdown reached a process that was never activated.
			panic(killSentinel{})
		}
		body(p)
	}()
	s.Schedule(s.now, func() { s.activate(p) })
	return p
}

// activate hands control to p until it yields (sleeps, blocks, or finishes).
// Must be called from the scheduler context.
func (s *Simulator) activate(p *Proc) {
	if p.done {
		return
	}
	if p.resume == nil {
		s.activateTask(p)
		return
	}
	s.running = p
	p.resume <- struct{}{}
	<-s.yielded
	s.running = nil
	if s.failure != nil {
		panic(s.failure)
	}
}

// Run executes events until the queue is empty and returns the final time.
func (s *Simulator) Run() Time {
	for len(s.queue) > 0 {
		s.step()
	}
	return s.now
}

// killSentinel is the panic value that unwinds a process terminated by
// Shutdown; the spawn wrapper recognises it and does not record a failure.
type killSentinel struct{}

// Shutdown terminates every live process and returns how many it reaped.
// Call it only after Run has returned (the scheduler is idle): processes
// still alive then are parked forever — a deadlocked synchronous exchange,
// middleware threads blocked on their inboxes — and their goroutines (and
// everything the simulation references) would otherwise leak for the life
// of the host process, since Go cannot collect a blocked goroutine. Each
// process unwinds via a panic that runs its deferred functions; the
// simulator is unusable afterwards.
func (s *Simulator) Shutdown() int {
	n := 0
	for _, p := range sortedLive(s.live) {
		if p.done {
			continue
		}
		p.killed = true
		s.activate(p)
		n++
	}
	return n
}

// sortedLive returns the live processes in id order, so Shutdown's unwind
// order is deterministic.
func sortedLive(live map[int]*Proc) []*Proc {
	out := make([]*Proc, 0, len(live))
	for _, p := range live {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RunUntil executes events with timestamps <= deadline, leaves the clock at
// min(deadline, last event time), and reports whether the queue drained.
func (s *Simulator) RunUntil(deadline Time) bool {
	for len(s.queue) > 0 && s.queue.peek().at <= deadline {
		s.step()
	}
	return len(s.queue) == 0
}

func (s *Simulator) step() {
	e := heap.Pop(&s.queue).(*event)
	if e.at < s.now {
		panic("des: time went backwards")
	}
	s.now = e.at
	s.events++
	e.fn()
}

// Proc is a simulated process. All methods must be called from within the
// process's own body function (they yield control to the scheduler), except
// where noted.
type Proc struct {
	sim    *Simulator
	id     int
	name   string
	resume chan struct{}
	done   bool
	killed bool // set by Shutdown; the next resume unwinds the process

	// recvSlot carries a value handed directly to a process that was
	// blocked in Chan.Recv when a sender arrived.
	recvSlot any
	hasSlot  bool

	// k is the pending continuation of a continuation-backed process
	// (SpawnTask); nil while the task is running or finished. Goroutine
	// processes never use it. See task.go.
	k func()
}

// ID returns the process id (1-based, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// yield returns control to the scheduler and blocks until reactivated.
func (p *Proc) yield() {
	p.sim.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Sleep suspends the process for d of virtual time. Sleep(0) yields to any
// other same-time events before continuing.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("des: negative sleep")
	}
	s := p.sim
	s.Schedule(s.now+d, func() { s.activate(p) })
	p.yield()
}

// SleepUntil suspends the process until the absolute virtual time t.
// A time at or before now yields to same-time events and continues — the
// natural loop body for timeline-driven processes (scenario drivers) whose
// first events may be at time zero.
func (p *Proc) SleepUntil(t Time) {
	now := p.sim.now
	if t < now {
		t = now
	}
	p.Sleep(t - now)
}

// park blocks the process until something reactivates it via sim.activate
// (used by Chan and higher-level synchronisation built on it).
func (p *Proc) park() { p.yield() }

// unpark schedules the process to resume at the current virtual time.
// Callable from scheduler context or from another process.
func (p *Proc) unpark() {
	s := p.sim
	s.Schedule(s.now, func() { s.activate(p) })
}

// Park blocks the calling process until another process or event calls
// Unpark on it. It is the building block for synchronisation primitives
// outside this package (mutexes, CPU queues); pair every Park with exactly
// one Unpark.
func (p *Proc) Park() { p.park() }

// Unpark schedules p to resume at the current virtual time. It may be
// called from scheduler context (event callbacks) or from another process;
// calling it for a process that is not parked corrupts the simulation.
func (p *Proc) Unpark() { p.unpark() }
