// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations for the design choices called out in
// DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment once per b.N iteration (the
// experiments are deterministic, so b.N = 1 gives the full result) and
// prints the regenerated table/figure; virtual execution times are also
// exposed as custom metrics (vsec/<version>).
package main

import (
	"fmt"
	"testing"

	"aiac/internal/aiac"
	"aiac/internal/bench"
	"aiac/internal/chem"
	"aiac/internal/cluster"
	"aiac/internal/des"
	"aiac/internal/env/envcore"
	"aiac/internal/env/madmpi"
	"aiac/internal/env/mpi"
	"aiac/internal/env/orb"
	"aiac/internal/env/pm2"
	"aiac/internal/gmres"
	"aiac/internal/marcel"
	"aiac/internal/netsim"
	"aiac/internal/problems"
)

// BenchmarkTable1Parameters prints the experiment parameters (paper
// Table 1).
func BenchmarkTable1Parameters(b *testing.B) {
	s := bench.DefaultScale()
	for i := 0; i < b.N; i++ {
		_ = bench.Table1(s)
	}
	b.StopTimer()
	fmt.Println(bench.Table1(s))
}

// BenchmarkFigure1SISCTrace regenerates the SISC execution flow (paper
// Figure 1): idle gaps between the iterations.
func BenchmarkFigure1SISCTrace(b *testing.B) {
	var idle float64
	for i := 0; i < b.N; i++ {
		sisc, _ := bench.Figures12(bench.DefaultScale())
		idle = sisc.MeanIdleFraction()
		if i == 0 {
			b.StopTimer()
			fmt.Println("Figure 1: SISC execution flow (two processors)")
			fmt.Print(sisc.Gantt(72))
			b.StartTimer()
		}
	}
	b.ReportMetric(idle, "idle-fraction")
}

// BenchmarkFigure2AIACTrace regenerates the AIAC execution flow (paper
// Figure 2): no idle time between iterations.
func BenchmarkFigure2AIACTrace(b *testing.B) {
	var idle float64
	for i := 0; i < b.N; i++ {
		_, asyncTr := bench.Figures12(bench.DefaultScale())
		idle = asyncTr.MeanIdleFraction()
		if i == 0 {
			b.StopTimer()
			fmt.Println("Figure 2: AIAC execution flow (two processors)")
			fmt.Print(asyncTr.Gantt(72))
			b.StartTimer()
		}
	}
	b.ReportMetric(idle, "idle-fraction")
}

// BenchmarkTable2SparseLinear regenerates the sparse linear problem
// comparison (paper Table 2): sync MPI vs the three asynchronous
// middlewares on the 3-site Ethernet grid.
func BenchmarkTable2SparseLinear(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table2(bench.DefaultScale())
	}
	b.StopTimer()
	fmt.Println(bench.FormatRows("Table 2: execution times for the sparse linear problem", rows))
	for _, r := range rows {
		b.ReportMetric(r.Time.Seconds(), "vsec/"+shortName(r.Version))
	}
}

// BenchmarkTable3NonLinear regenerates the non-linear problem comparison
// (paper Table 3): both grids, four versions each.
func BenchmarkTable3NonLinear(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table3(bench.DefaultScale())
	}
	b.StopTimer()
	fmt.Println(bench.FormatRows("Table 3: execution times on each cluster for the non-linear problem", rows))
	for _, r := range rows {
		b.ReportMetric(r.Time.Seconds(), "vsec/"+shortName(r.Cluster+"-"+r.Version))
	}
}

// BenchmarkTable4ThreadPolicies prints the per-environment thread
// configurations (paper Table 4).
func BenchmarkTable4ThreadPolicies(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Table4()
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure3Scalability regenerates the processor-count sweep on the
// local heterogeneous cluster (paper Figure 3).
func BenchmarkFigure3Scalability(b *testing.B) {
	var series map[string][]bench.Point
	for i := 0; i < b.N; i++ {
		series = bench.Figure3(bench.DefaultScale())
	}
	b.StopTimer()
	fmt.Println(bench.FormatFigure3(series))
}

// --- Ablations (DESIGN.md §4): the design choices behind the results ---

// BenchmarkAblationSyncMultisplitting compares the two synchronous
// baselines for the non-linear problem: the classical global Newton with
// distributed GMRES (Table 3's baseline, paper §4.2 strategy 1) versus
// lockstep multisplitting (strategy 2 run synchronously). The paper's
// measured speed ratios (~4.5) fall between the two at our scale.
func BenchmarkAblationSyncMultisplitting(b *testing.B) {
	s := bench.DefaultScale()
	var tGlobal, tLockstep des.Time
	for i := 0; i < b.N; i++ {
		{
			sim := des.New()
			grid := cluster.ThreeSiteEthernet(sim, s.NProcs)
			env := mpi.MustNew(grid, nil)
			p := chem.New(s.ChemNX, s.ChemNZ)
			run := problems.RunChemSyncGlobal(grid, env, p, p.InitialState(), s.ChemStepS, s.ChemHorizonS,
				gmres.Params{Tol: s.GmresTol, Restart: 30}, s.ChemEps, 50)
			tGlobal = run.Elapsed
		}
		{
			sim := des.New()
			grid := cluster.ThreeSiteEthernet(sim, s.NProcs)
			env := mpi.MustNew(grid, nil)
			p := chem.New(s.ChemNX, s.ChemNZ)
			run := problems.RunChem(grid, env, p, p.InitialState(), s.ChemStepS, s.ChemHorizonS,
				gmres.Params{Tol: s.GmresTol, Restart: 30},
				aiac.Config{Mode: aiac.Sync, Eps: s.ChemEps})
			tLockstep = run.Elapsed
		}
	}
	b.StopTimer()
	fmt.Printf("Ablation sync baselines (Ethernet grid): global GMRES %v, lockstep multisplitting %v\n\n", tGlobal, tLockstep)
	b.ReportMetric(tGlobal.Seconds(), "vsec/global-gmres")
	b.ReportMetric(tLockstep.Seconds(), "vsec/lockstep")
}

// BenchmarkAblationSchedulerFairness probes §6's fairness requirement: the
// same AIAC solve with fair versus unfair (LIFO) CPU scheduling on every
// machine, with ORB-style on-demand handler threads competing with the
// solver thread for the CPU under all-to-all traffic. The primitive-level
// starvation guarantee is asserted by marcel's unfair-scheduler tests; the
// system-level effect depends on how saturated the CPUs are, so both times
// are reported side by side.
func BenchmarkAblationSchedulerFairness(b *testing.B) {
	run := func(policy func(*cluster.Grid)) des.Time {
		sim := des.New()
		grid := cluster.ThreeSiteEthernet(sim, 12)
		policy(grid)
		env := orb.MustNew(grid, orb.Sparse, nil)
		prob := problems.NewLinear(120000, 30, 0.88, 3)
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Async, Eps: 1e-7, MaxIters: 1000000})
		return rep.Elapsed
	}
	var fair, unfair des.Time
	for i := 0; i < b.N; i++ {
		fair = run(func(*cluster.Grid) {})
		unfair = run(func(g *cluster.Grid) {
			for _, m := range g.Machines {
				m.CPU.Policy = marcel.Unfair
			}
		})
	}
	b.StopTimer()
	fmt.Printf("Ablation scheduler fairness (ORB, all-to-all): fair %v, unfair %v\n\n", fair, unfair)
	b.ReportMetric(fair.Seconds(), "vsec/fair")
	b.ReportMetric(unfair.Seconds(), "vsec/unfair")
}

// BenchmarkAblationRecvModel isolates the receive-thread policy: the same
// cost model with a single receiving thread versus on-demand threads on the
// all-to-all sparse problem.
func BenchmarkAblationRecvModel(b *testing.B) {
	run := func(model envcore.RecvModel) des.Time {
		sim := des.New()
		grid := cluster.ThreeSiteEthernet(sim, 12)
		opts := envcore.Options{
			Name:         "ablation",
			Costs:        madmpi.Costs,
			SendThreads:  1,
			RecvModel:    model,
			Backpressure: true, RendezvousBytes: 16 << 10, SocketBufBytes: 16 << 10,
		}
		env := envcore.MustNew(grid, opts)
		prob := problems.NewLinear(120000, 30, 0.88, 7)
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Async, Eps: 1e-7, MaxIters: 1000000})
		return rep.Elapsed
	}
	var single, onDemand des.Time
	for i := 0; i < b.N; i++ {
		single = run(envcore.RecvSingleThread)
		onDemand = run(envcore.RecvOnDemand)
	}
	b.StopTimer()
	fmt.Printf("Ablation receive model (all-to-all sparse): single thread %v, on demand %v\n\n", single, onDemand)
	b.ReportMetric(single.Seconds(), "vsec/single-thread")
	b.ReportMetric(onDemand.Seconds(), "vsec/on-demand")
}

// BenchmarkAblationSharedMedium compares switched versus hub (shared
// medium) 10 Mb Ethernet for the synchronous algorithm, whose per-round
// bursts collide on a shared segment.
func BenchmarkAblationSharedMedium(b *testing.B) {
	run := func(lan netsim.LinkClass) des.Time {
		sim := des.New()
		grid := cluster.Homogeneous(sim, 8, cluster.P4_1700, lan)
		env := mpi.MustNew(grid, nil)
		prob := problems.NewLinear(40000, 12, 0.8, 5)
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Sync, Eps: 1e-7})
		return rep.Elapsed
	}
	var switched, hub des.Time
	for i := 0; i < b.N; i++ {
		switched = run(netsim.Ethernet10)
		hub = run(netsim.Ethernet10Hub)
	}
	b.StopTimer()
	fmt.Printf("Ablation shared medium (sync, 8 procs): switched %v, hub %v\n\n", switched, hub)
	b.ReportMetric(switched.Seconds(), "vsec/switched")
	b.ReportMetric(hub.Seconds(), "vsec/hub")
}

// BenchmarkAblationMultiProtocol measures MPICH/Madeleine's multi-protocol
// feature (§5.3): the same solve with TCP-only versus Myrinet available
// intra-site.
func BenchmarkAblationMultiProtocol(b *testing.B) {
	run := func(multi bool) des.Time {
		sim := des.New()
		var grid *cluster.Grid
		if multi {
			grid = cluster.LocalMultiProtocol(sim, 8)
		} else {
			grid = cluster.LocalHeterogeneous(sim, 8)
		}
		env := madmpi.MustNew(grid, madmpi.Sparse, nil)
		prob := problems.NewLinear(40000, 12, 0.8, 11)
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Async, Eps: 1e-7, MaxIters: 3000000})
		return rep.Elapsed
	}
	var tcp, myri des.Time
	for i := 0; i < b.N; i++ {
		tcp = run(false)
		myri = run(true)
	}
	b.StopTimer()
	fmt.Printf("Ablation multi-protocol (mpi/mad, 8 procs): tcp-only %v, with myrinet %v\n\n", tcp, myri)
	b.ReportMetric(tcp.Seconds(), "vsec/tcp")
	b.ReportMetric(myri.Seconds(), "vsec/myrinet")
}

func shortName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ':
			out = append(out, '-')
		case r == '/':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkAblationLoadBalancing measures the static load-balancing
// extension (the direction of the paper's reference [7]): row blocks sized
// proportionally to machine speed versus equal blocks, on the heterogeneous
// local cluster.
func BenchmarkAblationLoadBalancing(b *testing.B) {
	run := func(balanced bool) des.Time {
		sim := des.New()
		grid := cluster.LocalHeterogeneous(sim, 9)
		env := pm2.MustNew(grid, pm2.Sparse, nil)
		prob := problems.NewLinear(45000, 12, 0.85, 19)
		if balanced {
			prob.Weights = grid.SpeedWeights()
		}
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Async, Eps: 1e-7, MaxIters: 3000000})
		return rep.Elapsed
	}
	var equal, balanced des.Time
	for i := 0; i < b.N; i++ {
		equal = run(false)
		balanced = run(true)
	}
	b.StopTimer()
	fmt.Printf("Ablation load balancing (9 heterogeneous procs): equal blocks %v, speed-proportional %v\n\n", equal, balanced)
	b.ReportMetric(equal.Seconds(), "vsec/equal")
	b.ReportMetric(balanced.Seconds(), "vsec/balanced")
}
