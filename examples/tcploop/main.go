// Tcploop runs a two-"site" AIAC solve over real TCP sockets in one
// process: ranks 0-1 form site A and ranks 2-3 site B, every message
// crosses a loopback TCP connection carrying the binary wire codec
// (internal/transport), and the inter-site links are shaped with a WAN-like
// delay. It then repeats the run synchronously, reproducing the paper's
// core result — asynchronous iterations hide the slow links that throttle
// the synchronous lockstep — on an actual network stack instead of the
// simulator.
//
//	go run ./examples/tcploop
package main

import (
	"fmt"
	"time"

	"aiac/internal/aiac"
	"aiac/internal/backend"
	"aiac/internal/la"
	"aiac/internal/problems"
	"aiac/internal/transport"
)

const (
	ranks      = 4
	interDelay = 20 * time.Millisecond // site A <-> site B
	intraDelay = 200 * time.Microsecond
)

// site assigns the first half of the ranks to site A, the rest to site B.
func site(r int) int { return r / (ranks / 2) }

func run(mode aiac.Mode) (*backend.Report, *problems.Linear, error) {
	tr := transport.NewTCP(ranks)
	for from := 0; from < ranks; from++ {
		for to := 0; to < ranks; to++ {
			if from == to {
				continue
			}
			d := intraDelay
			if site(from) != site(to) {
				d = interDelay
			}
			tr.SetShaping(from, to, transport.Shaping{Delay: d})
		}
	}
	prob := problems.NewLinear(8000, 12, 0.85, 42)
	rep, err := backend.Run(prob, tr, backend.Config{
		Mode: mode, Eps: 1e-7, Timeout: 2 * time.Minute,
	})
	return rep, prob, err
}

func main() {
	fmt.Printf("Two-site AIAC over TCP loopback: %d ranks, %v between sites\n\n", ranks, interDelay)
	for _, mode := range []aiac.Mode{aiac.Sync, aiac.Async} {
		rep, prob, err := run(mode)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-5s %s in %10v  iters=%-6d wire=%.1f MB  err=%.1e\n",
			mode, rep.Reason, rep.Wall.Round(time.Millisecond), rep.TotalIters(),
			float64(rep.Net.Bytes)/1e6, la.MaxNormDiff(rep.X, prob.XTrue))
	}
	fmt.Println("\nThe synchronous lockstep pays the inter-site delay on every")
	fmt.Println("iteration (exchange + residual reduction); the asynchronous")
	fmt.Println("version keeps iterating while data crosses the slow links.")
}
