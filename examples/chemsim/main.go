// Chemsim runs the paper's non-linear test problem — a two-species
// advection-diffusion system with diurnal kinetics — on a simulated 3-site
// grid using asynchronous multisplitting Newton, and prints per-time-step
// physics diagnostics.
//
//	go run ./examples/chemsim
package main

import (
	"fmt"

	"aiac/internal/aiac"
	"aiac/internal/chem"
	"aiac/internal/cluster"
	"aiac/internal/des"
	"aiac/internal/env/madmpi"
	"aiac/internal/gmres"
	"aiac/internal/problems"
)

func main() {
	const (
		nx, nz = 60, 40
		nprocs = 8
		h      = 180.0 // s
		tEnd   = 1080.0
	)
	fmt.Printf("Non-linear chemical problem: %dx%d grid, %d processors, dt=%gs, t in [0,%gs]\n\n",
		nx, nz, nprocs, h, tEnd)

	sim := des.New()
	grid := cluster.ThreeSiteEthernet(sim, nprocs)
	env := madmpi.MustNew(grid, madmpi.NonLinear, nil)
	p := chem.New(nx, nz)
	y := p.InitialState()
	m1, m2 := p.TotalMass(y)
	fmt.Printf("t=%6.0fs  mass(c1)=%.4e  mass(c2)=%.4e  (initial)\n", 0.0, m1, m2)

	run := problems.RunChem(grid, env, p, y, h, tEnd,
		gmres.Params{Tol: 1e-7, Restart: 30},
		aiac.Config{Mode: aiac.Async, Eps: 1e-7})

	// Replay the steps for the physics narrative.
	yk := y
	for i, rep := range run.Steps {
		yk = rep.X
		m1, m2 = p.TotalMass(yk)
		q3, q4 := chem.Rates(float64(i+1) * h)
		fmt.Printf("t=%6.0fs  mass(c1)=%.4e  mass(c2)=%.4e  q3=%.2e q4=%.2e  iters=%d  %s\n",
			float64(i+1)*h, m1, m2, q3, q4, rep.TotalIters(), rep.Reason)
	}

	fmt.Printf("\nvirtual execution time: %v over %d time steps (all converged: %v)\n",
		run.Elapsed, len(run.Steps), run.AllConverged())
	fmt.Printf("min concentration at end: %.3e\n", chem.MinConcentration(run.Y))
	fmt.Println("(pre-dawn interval: photolysis rates q3, q4 are near zero, so c1 decays into c2;")
	fmt.Println(" run longer horizons to watch the diurnal cycle regenerate it)")
}
