// Deployment demonstrates the paper's §5.3 comparison of deployment
// constraints: PM2 and MPICH/Madeleine require a complete interconnection
// graph, while the ORB's client/server architecture routes around blocked
// site pairs (firewall visibility problems) — at the cost of relayed
// traffic.
//
//	go run ./examples/deployment
package main

import (
	"fmt"

	"aiac/internal/aiac"
	"aiac/internal/cluster"
	"aiac/internal/des"
	"aiac/internal/env/madmpi"
	"aiac/internal/env/orb"
	"aiac/internal/env/pm2"
	"aiac/internal/la"
	"aiac/internal/problems"
)

func main() {
	fmt.Println("Deployment over a grid with a firewall between sites 0 and 1 (§5.3)")
	fmt.Println()

	// Try to deploy each environment on the blocked grid.
	for _, attempt := range []struct {
		name string
		mk   func(g *cluster.Grid) (aiac.Env, error)
	}{
		{"pm2", func(g *cluster.Grid) (aiac.Env, error) { return pm2.New(g, pm2.Sparse, nil) }},
		{"mpi/mad", func(g *cluster.Grid) (aiac.Env, error) { return madmpi.New(g, madmpi.Sparse, nil) }},
		{"omniorb4", func(g *cluster.Grid) (aiac.Env, error) { return orb.New(g, orb.Sparse, nil) }},
	} {
		sim := des.New()
		grid := cluster.ThreeSiteEthernet(sim, 6)
		grid.Net.Block(0, 1)
		env, err := attempt.mk(grid)
		if err != nil {
			fmt.Printf("%-9s deployment FAILS:  %v\n", attempt.name, err)
			continue
		}
		// The ORB deploys; prove it also solves, relaying around the
		// firewall.
		prob := problems.NewLinear(6000, 8, 0.6, 9)
		rep := aiac.Run(grid, env, prob, aiac.Config{Mode: aiac.Async, Eps: 1e-7, MaxIters: 3000000})
		fmt.Printf("%-9s deployment works:  solved with relaying, %s, error=%.2e, time=%v\n",
			attempt.name, rep.Reason, la.MaxNormDiff(rep.X, prob.XTrue), rep.Elapsed)
	}

	fmt.Println()
	// The naming-service bootstrap every ORB deployment needs.
	ns := orb.NewNamingService(0)
	msgs := orb.Bootstrap(ns, 6)
	ref, _ := ns.Resolve(3)
	fmt.Printf("omniorb4 naming service: %d bootstrap messages for 6 ranks; solver3 -> %s\n", msgs, ref)
}
