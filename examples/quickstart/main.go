// Quickstart: solve a sparse linear system with an AIAC algorithm on a
// simulated heterogeneous cluster and compare it with the synchronous SISC
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"aiac/internal/aiac"
	"aiac/internal/cluster"
	"aiac/internal/des"
	"aiac/internal/env/mpi"
	"aiac/internal/env/pm2"
	"aiac/internal/la"
	"aiac/internal/problems"
)

func main() {
	// The test system: 20,000 unknowns, 12 off-diagonals, Jacobi spectral
	// radius below 0.8, known true solution.
	const n, diags = 20000, 12
	const rho, eps = 0.8, 1e-8

	fmt.Println("AIAC quickstart: fixed-step gradient on a sparse system")
	fmt.Printf("n=%d, %d off-diagonals, spectral radius < %.2f\n\n", n, diags, rho)

	// Asynchronous solve on a PM2-like environment over a local
	// heterogeneous cluster (Duron 800, P4 1.7, P4 2.4 interleaved).
	simA := des.New()
	gridA := cluster.LocalHeterogeneous(simA, 6)
	envA := pm2.MustNew(gridA, pm2.Sparse, nil)
	probA := problems.NewLinear(n, diags, rho, 42)
	repA := aiac.Run(gridA, envA, probA, aiac.Config{Mode: aiac.Async, Eps: eps})
	fmt.Printf("AIAC  (async, pm2):      %12v  %s\n", repA.Elapsed, describe(repA, probA))

	// Synchronous baseline on classical MPI over the same cluster.
	simS := des.New()
	gridS := cluster.LocalHeterogeneous(simS, 6)
	envS := mpi.MustNew(gridS, nil)
	probS := problems.NewLinear(n, diags, rho, 42)
	repS := aiac.Run(gridS, envS, probS, aiac.Config{Mode: aiac.Sync, Eps: eps})
	fmt.Printf("SISC  (sync, mpi):       %12v  %s\n", repS.Elapsed, describe(repS, probS))

	fmt.Printf("\nspeed ratio (sync/async): %.2f\n", float64(repS.Elapsed)/float64(repA.Elapsed))
	fmt.Printf("async per-rank iterations: %v\n", repA.ItersPerRank)
	fmt.Println("(fast machines iterate more often — the asynchronous scheme never waits)")
}

func describe(rep *aiac.Report, prob *problems.Linear) string {
	return fmt.Sprintf("reason=%s  iters=%d  error vs truth=%.2e",
		rep.Reason, rep.TotalIters(), la.MaxNormDiff(rep.X, prob.XTrue))
}
