// Realtime runs the same AIAC algorithm on the real Go runtime — goroutine
// ranks over an in-process transport in wall-clock time — instead of the
// discrete-event simulator, demonstrating that Go natively provides every
// feature the paper's §6 demands from a parallel programming environment.
// It is the smallest consumer of the native backend (internal/backend);
// the experiment matrix runs the same code as its chan/tcp cells.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"runtime"
	"time"

	"aiac/internal/aiac"
	"aiac/internal/backend"
	"aiac/internal/la"
	"aiac/internal/problems"
	"aiac/internal/transport"
)

func main() {
	const n, diags = 10000, 16
	ranks := runtime.GOMAXPROCS(0)
	if ranks > 8 {
		ranks = 8
	}
	if ranks < 4 {
		ranks = 4 // goroutines multiplex fine on fewer cores
	}
	fmt.Printf("Wall-clock AIAC on goroutines: n=%d, %d ranks\n\n", n, ranks)
	fmt.Println("paper §6 feature          Go construct")
	fmt.Println("------------------------  -----------------------------------")
	fmt.Println("multi-threading           goroutines")
	fmt.Println("fair thread scheduler     Go runtime scheduler")
	fmt.Println("blocking point-to-point   transport.Transport.Send")
	fmt.Println("async send-if-free        one sender goroutine per channel")
	fmt.Println("receive threads on demand one receive goroutine per link")
	fmt.Println("mutex system              sync.Mutex")
	fmt.Println()

	prob := problems.NewLinear(n, diags, 0.85, 7)
	rep, err := backend.Run(prob, transport.NewChan(ranks), backend.Config{
		Mode: aiac.Async, Eps: 1e-9, Timeout: time.Minute,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("converged: %v in %v (wall clock)\n", rep.Converged(), rep.Wall)
	fmt.Printf("per-rank iterations: %v\n", rep.ItersPerRank)
	fmt.Printf("messages: %d (%.1f MB on the wire)\n", rep.Net.Messages, float64(rep.Net.Bytes)/1e6)
	fmt.Printf("error vs known solution: %.2e\n", la.MaxNormDiff(rep.X, prob.XTrue))
}
