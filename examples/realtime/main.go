// Realtime runs the same AIAC algorithm on the real Go runtime — goroutines
// and channels in wall-clock time — instead of the discrete-event
// simulator, demonstrating that Go natively provides every feature the
// paper's §6 demands from a parallel programming environment.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"runtime"

	"aiac/internal/la"
	"aiac/internal/problems"
	"aiac/internal/realrt"
)

func main() {
	const n, diags = 10000, 16
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 4 {
		workers = 4 // goroutines multiplex fine on fewer cores
	}
	fmt.Printf("Wall-clock AIAC on goroutines: n=%d, %d workers\n\n", n, workers)
	fmt.Println("paper §6 feature          Go construct")
	fmt.Println("------------------------  -----------------------------------")
	fmt.Println("multi-threading           goroutines")
	fmt.Println("fair thread scheduler     Go runtime scheduler")
	fmt.Println("async send-if-free        select { case ch <- m: default: }")
	fmt.Println("receive threads on demand one receiver goroutine per channel")
	fmt.Println("mutex system              sync.Mutex")
	fmt.Println()

	prob := problems.NewLinear(n, diags, 0.85, 7)
	res := realrt.Solve(prob, realrt.Config{Eps: 1e-9, Workers: workers})

	fmt.Printf("converged: %v in %v (wall clock)\n", res.Converged, res.Elapsed)
	fmt.Printf("per-worker iterations: %v\n", res.ItersPerRank)
	fmt.Printf("error vs known solution: %.2e\n", la.MaxNormDiff(res.X, prob.XTrue))
}
