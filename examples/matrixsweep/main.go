// Matrixsweep: run a corner of the paper's experiment matrix — every
// middleware environment in both modes on the 3-site Ethernet and ADSL
// grids — through the internal/matrix worker pool, then derive the paper's
// comparison table and persist the results for later diffing.
//
//	go run ./examples/matrixsweep
package main

import (
	"fmt"
	"os"

	"aiac/internal/matrix"
	"aiac/internal/report"
)

func main() {
	// A reduced sweep: all environments and both modes (the matrix skips
	// the impossible async×mpi pair on its own), two grids, small system.
	spec := matrix.DefaultSpec()
	spec.Grids = []string{"3site", "local"}
	spec.Sizes = []int{6000}

	cells := spec.Cells()
	fmt.Printf("sweeping %d cells of the experiment matrix\n\n", len(cells))

	set, err := matrix.Run(spec, matrix.Options{
		Workers: 4,
		OnResult: func(r report.Result) {
			fmt.Printf("  done %-40s %8.2fs virtual\n", r.Key(), r.TimeSec)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Print(set.Table())

	const out = "matrixsweep.json"
	if err := report.WriteFile(out, set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("persisted to %s — rerun and diff with:\n", out)
	fmt.Printf("  go run ./cmd/aiacbench -grid 3site,local -n 6000 -baseline %s\n", out)
}
