module aiac

go 1.24
